#include "core/ewma_predictor.h"

#include <algorithm>
#include <memory>

#include "harness/registry.h"

namespace lion {

EwmaPredictor::EwmaPredictor(PredictorConfig config, uint64_t seed)
    : TemplateClassPredictor(std::move(config), seed) {}

void EwmaPredictor::FitModels() {
  // Holt's linear smoothing, refit from scratch over each class's bounded
  // series: O(window) per class per round, so there is no training state to
  // go stale and nothing to retrain. The class model only caches the fit.
  const double a = config_.ewma_alpha;
  const double g = config_.ewma_trend;
  for (WorkloadClass& cls : classes()) {
    if (cls.series.size() < 2) continue;
    if (cls.model == nullptr) cls.model = std::make_unique<HoltModel>();
    auto* model = static_cast<HoltModel*>(cls.model.get());
    double level = cls.series[0];
    double trend = cls.series[1] - cls.series[0];
    double err2 = 0.0;
    for (size_t t = 1; t < cls.series.size(); ++t) {
      double predicted = level + trend;
      double e = cls.series[t] - predicted;
      err2 += e * e;
      double prev_level = level;
      level = a * cls.series[t] + (1.0 - a) * (level + trend);
      trend = g * (level - prev_level) + (1.0 - g) * trend;
    }
    model->level = level;
    model->trend = trend;
    model->last_mse = err2 / static_cast<double>(cls.series.size() - 1);
    model->fitted = true;
  }
}

double EwmaPredictor::ForecastClass(const WorkloadClass& cls,
                                    int horizon) const {
  const auto* model = static_cast<const HoltModel*>(cls.model.get());
  if (model == nullptr || !model->fitted || cls.series.empty()) {
    return cls.series.empty() ? 0.0 : cls.series.back();
  }
  return std::max(
      0.0, model->level + static_cast<double>(horizon) * model->trend);
}

namespace {

const PredictorRegistrar kRegisterEwma(
    "ewma",
    [](const PredictorContext& ctx) -> std::unique_ptr<PredictorInterface> {
      return std::make_unique<EwmaPredictor>(ctx.config, ctx.seed);
    });

}  // namespace

}  // namespace lion
