// Reconfiguration plan produced by the plan generator.
#pragma once

#include <vector>

#include "common/types.h"
#include "core/clump.h"
#include "replication/router_table.h"

namespace lion {

enum class PlanAction : uint8_t {
  /// Provision a new secondary replica of `pid` on `node` (background copy).
  kAddReplica,
  /// Promote `node`'s secondary of `pid` to primary.
  kRemaster,
  /// Blocking full migration of the primary (replica-blind strategies such
  /// as Schism that ignore existing secondaries).
  kMovePrimary,
};

/// One replica-layout adjustment, routed to the adaptor of `node`.
struct PlanEntry {
  PlanAction action = PlanAction::kAddReplica;
  PartitionId pid = kInvalidPartition;
  NodeId node = kInvalidNode;
};

/// The RP structure of Sec. IV-B: clump -> node assignments, convertible to
/// the concrete adaptor actions that realize them.
struct ReconfigurationPlan {
  /// Clumps with their chosen destination (c.n filled in).
  std::vector<Clump> assignments;
  /// Total placement cost (sum of f_o over assignments).
  double total_cost = 0.0;
  /// Fine-tuning moves applied for load balancing.
  int fine_tune_moves = 0;

  /// Derives adaptor actions from the assignments against the current
  /// placement: nothing for partitions already primary at the destination,
  /// kRemaster where the destination holds a live secondary, kAddReplica
  /// (followed by an on-demand remaster at execution time) otherwise.
  std::vector<PlanEntry> ToEntries(const RouterTable& table) const;
};

}  // namespace lion
