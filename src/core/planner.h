// The planner node: workload analyzer + plan generator (Sec. III).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/adaptor.h"
#include "core/clump.h"
#include "core/plan.h"
#include "core/plan_generator.h"
#include "core/predictor_interface.h"
#include "core/schism.h"
#include "replication/cluster.h"
#include "sim/periodic_timer.h"

namespace lion {

/// Which partitioning strategy drives plan generation (Table II ablation).
enum class PartitioningStrategy {
  /// Lion's replica rearrangement (Algorithm 1, replica-aware).
  kReplicaRearrangement,
  /// Schism-style replica-blind min-cut repartitioning.
  kSchism,
};

struct PlannerConfig {
  PartitioningStrategy strategy = PartitioningStrategy::kReplicaRearrangement;
  /// How often the planner analyzes the workload and re-plans.
  SimTime interval = 500 * kMillisecond;
  /// B: how many recent transactions the analyzer keeps.
  size_t history_capacity = 20000;
  /// Minimum history before a planning round does anything.
  size_t min_history = 64;
  /// Exponential decay applied to partition access frequencies per round.
  double frequency_decay = 0.5;
  ClumpOptions clump;
  PlanGeneratorConfig plan;
};

/// Periodically: collect the recent B transactions (plus K predicted ones),
/// build the heat graph, generate clumps, run the replica rearrangement
/// algorithm, and dispatch the resulting plan entries to each node's
/// adaptor over the network.
class Planner {
 public:
  /// `predictor` may be null (Lion(R) ablation: no workload prediction).
  Planner(Cluster* cluster, PlannerConfig config,
          PredictorInterface* predictor = nullptr);

  /// Starts the periodic planning loop (weak timer).
  void Start();

  /// Halts the planning loop: no further rounds run, so no new migrations
  /// or remasters are initiated. Idempotent; Start() may re-arm it.
  void Stop();

  /// Records one routed transaction's partition set into the history.
  void RecordTxn(const std::vector<PartitionId>& parts, SimTime now);

  /// Runs one planning round immediately (also used by tests).
  void RunOnce();

  /// Forwards region constraints to the plan generator (see
  /// PlanGenerator::SetGeoPlacement). `geo` must outlive the planner.
  void SetGeoPlacement(const GeoPlacement* geo) {
    plan_generator_.SetGeoPlacement(geo);
  }

  Adaptor* adaptor(NodeId node) { return adaptors_[node].get(); }

  uint64_t plans_generated() const { return plans_generated_; }
  uint64_t entries_dispatched() const { return entries_dispatched_; }
  const ReconfigurationPlan& last_plan() const { return last_plan_; }

  /// The distributor endpoint id used as the source of plan messages.
  NodeId planner_endpoint() const { return cluster_->num_nodes(); }

 private:
  Cluster* cluster_;
  PlannerConfig config_;
  PredictorInterface* predictor_;
  ClumpGenerator clump_generator_;
  PlanGenerator plan_generator_;
  SchismPartitioner schism_;
  std::vector<std::unique_ptr<Adaptor>> adaptors_;
  std::deque<std::vector<PartitionId>> history_;
  uint64_t plans_generated_ = 0;
  uint64_t entries_dispatched_ = 0;
  PeriodicTimer tick_timer_;
  ReconfigurationPlan last_plan_;
};

}  // namespace lion
