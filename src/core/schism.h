// Schism-style replica-blind graph repartitioner (ablation baseline).
#pragma once

#include <vector>

#include "core/clump.h"
#include "core/heat_graph.h"
#include "replication/router_table.h"

namespace lion {

/// The partitioning strategy of Schism (Curino et al., VLDB'10), used by the
/// Lion(S)/Lion(SW) ablation variants: a balanced min-cut assignment of
/// partitions to nodes over the co-access graph. Unlike Lion's replica
/// rearrangement it is blind to secondary replica placement, so realizing
/// its plans requires full primary migrations ("unnecessary migrations",
/// Sec. VI-B).
class SchismPartitioner {
 public:
  explicit SchismPartitioner(double epsilon = 0.25) : epsilon_(epsilon) {}

  /// Assigns every vertex of `graph` to a node: greedy heaviest-first
  /// placement maximizing co-access affinity under a per-node weight cap,
  /// followed by a Kernighan-Lin-style refinement pass that relocates
  /// vertices whose cut gain is positive. Returns one clump per node.
  std::vector<Clump> Partition(const HeatGraph& graph,
                               const RouterTable& table) const;

 private:
  double epsilon_;
};

}  // namespace lion
