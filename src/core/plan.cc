#include "core/plan.h"

namespace lion {

std::vector<PlanEntry> ReconfigurationPlan::ToEntries(
    const RouterTable& table) const {
  std::vector<PlanEntry> entries;
  for (const Clump& clump : assignments) {
    if (clump.dst == kInvalidNode) continue;
    for (PartitionId pid : clump.pids) {
      if (table.PrimaryOf(pid) == clump.dst) continue;  // case 1: free
      if (table.HasSecondary(clump.dst, pid)) {
        // Case 2: lightweight remastering.
        entries.push_back(PlanEntry{PlanAction::kRemaster, pid, clump.dst});
      } else {
        // Case 3: replica must be provisioned first. The remaster to make
        // it primary happens on demand when a transaction needs it.
        entries.push_back(PlanEntry{PlanAction::kAddReplica, pid, clump.dst});
      }
    }
  }
  return entries;
}

}  // namespace lion
