#include "core/clump.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace lion {

std::vector<Clump> ClumpGenerator::Generate(const HeatGraph& graph,
                                            const RouterTable& table) const {
  std::vector<Clump> clumps;
  std::unordered_set<PartitionId> used;
  std::vector<PartitionId> by_heat = graph.VerticesByHeat();
  double threshold = options_.alpha;
  double raw_floor = options_.alpha_relative > 0.0
                         ? options_.alpha_relative * graph.MeanEdgeWeight()
                         : 0.0;

  for (PartitionId seed : by_heat) {
    if (used.count(seed)) continue;
    Clump clump;
    std::deque<PartitionId> frontier;
    frontier.push_back(seed);
    used.insert(seed);

    while (!frontier.empty()) {
      PartitionId v = frontier.front();
      frontier.pop_front();
      clump.pids.push_back(v);
      clump.weight += graph.VertexWeight(v);

      for (const auto& [nbr, raw_w] : graph.Neighbors(v)) {
        if (used.count(nbr)) continue;
        // Below-average co-access is placement noise, not structure.
        if (raw_w <= raw_floor) continue;
        // Edges across current node boundaries get boosted: co-access that
        // is already local matters less than co-access that currently
        // requires a distributed transaction.
        double eff = raw_w;
        if (table.PrimaryOf(v) != table.PrimaryOf(nbr)) {
          eff *= options_.cross_node_multiplier;
        }
        if (eff > threshold) {
          used.insert(nbr);
          frontier.push_back(nbr);
        }
      }
    }
    std::sort(clump.pids.begin(), clump.pids.end());
    clumps.push_back(std::move(clump));
  }
  return clumps;
}

}  // namespace lion
