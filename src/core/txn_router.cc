#include "core/txn_router.h"

namespace lion {

NodeId TxnRouter::Route(const std::vector<PartitionId>& parts) const {
  const RouterTable& table = cluster_->router();
  NodeId best = kInvalidNode;
  int best_replicas = -1;
  double best_cost = 0.0;
  double best_load = 0.0;

  for (NodeId n = 0; n < table.num_nodes(); ++n) {
    if (!table.IsNodeUp(n)) continue;
    int replicas = 0;
    for (PartitionId p : parts) {
      if (table.HasReplica(n, p)) replicas++;
    }
    double cost = cost_model_.ExecutionCost(table, parts, n);
    double load = cluster_->pool(n)->Load();

    bool better = best == kInvalidNode;
    if (better) {
    } else if (replicas != best_replicas) {
      better = replicas > best_replicas;
    } else if (cost != best_cost) {
      better = cost < best_cost;
    } else {
      better = load < best_load;
    }
    if (better) {
      best = n;
      best_replicas = replicas;
      best_cost = cost;
      best_load = load;
    }
  }
  return best == kInvalidNode ? 0 : best;
}

}  // namespace lion
