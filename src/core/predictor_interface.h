// Interface between the planner and the workload prediction mechanism.
#pragma once

#include <vector>

#include "common/types.h"
#include "core/heat_graph.h"

namespace lion {

/// Workload predictor hook (Sec. IV-C). The planner feeds it every observed
/// transaction; before each planning round it may inject predicted
/// co-accessed partitions into the heat graph (weighted by w_p) and decide
/// whether the forecast workload shift warrants pre-replication.
class PredictorInterface {
 public:
  virtual ~PredictorInterface() = default;

  /// Observes one routed transaction's partition set.
  virtual void OnTxn(const std::vector<PartitionId>& parts, SimTime now) = 0;

  /// Injects the K predicted transactions' co-access patterns into `graph`
  /// (the red dashed edges of Fig. 5c). Called once per planning round.
  virtual void AugmentGraph(HeatGraph* graph, SimTime now) = 0;

  /// The workload-variation metric wv(t, h) of Eq. 6; pre-replication is
  /// warranted when it exceeds the configured γ.
  virtual double WorkloadVariation(SimTime now) = 0;

  /// Per-partition forecast `horizon` sampling intervals ahead, in txns per
  /// interval: each class's forecast rate is spread over its member
  /// templates' partitions. `out` is sized to the highest partition seen
  /// (smaller when tails are quiet); an empty `out` means no forecast is
  /// available yet. Consumers beyond the planner (the meta-protocol's
  /// per-partition flip rule) read workload shifts through this without
  /// touching the heat graph. Default: no forecast.
  virtual void ForecastPartitions(SimTime now, int horizon,
                                  std::vector<double>* out) {
    (void)now;
    (void)horizon;
    out->clear();
  }
};

}  // namespace lion
