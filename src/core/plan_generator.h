// The replica rearrangement algorithm (Algorithm 1, Sec. IV-B3).
#pragma once

#include <vector>

#include "common/types.h"
#include "core/clump.h"
#include "core/cost_model.h"
#include "core/geo_placement.h"
#include "core/plan.h"
#include "replication/router_table.h"

namespace lion {

struct PlanGeneratorConfig {
  /// ε: permissible load imbalance; θ = avg * (1 + ε) caps per-node load.
  double epsilon = 0.25;
  /// A: number of fine-tuning moves between FindOINodes re-derivations.
  int step_budget = 8;
  CostModelConfig cost;
};

/// Implements Algorithm 1:
///   1. clump dispatching — assign each clump to the node minimizing its
///      placement cost f_o (Eq. 3), tracking per-node balance factors b_i;
///   2. load fine-tuning — while some node exceeds θ, move the largest
///      fitting clump from an overloaded node to the cheapest idle node.
class PlanGenerator {
 public:
  explicit PlanGenerator(PlanGeneratorConfig config)
      : config_(config), cost_model_(config.cost) {}

  /// Attaches region constraints: dispatching and fine-tuning skip nodes
  /// the geo policy rejects for a clump (disallowed region, or a write-hot
  /// partition whose primary would cross regions), and the cost model
  /// prices cross-region migrations at the WAN multiplier. Null (the
  /// default) restores unconstrained behavior. `geo` must outlive this
  /// generator.
  void SetGeoPlacement(const GeoPlacement* geo) {
    geo_ = geo;
    cost_model_.SetGeoPlacement(geo);
  }

  /// Produces the reconfiguration plan for `clumps` against placement
  /// `table`. Clump destinations (c.n) are filled in the returned plan.
  ReconfigurationPlan Rearrange(std::vector<Clump> clumps,
                                const RouterTable& table) const;

  const CostModel& cost_model() const { return cost_model_; }

 private:
  /// FindDstNode: minimal f_o; ties prefer the currently least-loaded node.
  NodeId FindDstNode(const Clump& clump, const RouterTable& table,
                     const std::vector<double>& balance,
                     std::vector<double>* costs_out) const;

  /// CheckBalance: all balance factors within θ = avg * (1 + ε).
  bool CheckBalance(double avg, const std::vector<double>& balance) const;

  PlanGeneratorConfig config_;
  CostModel cost_model_;
  const GeoPlacement* geo_ = nullptr;
};

}  // namespace lion
