#include "core/adaptor.h"

namespace lion {

void Adaptor::Apply(const PlanEntry& entry) {
  switch (entry.action) {
    case PlanAction::kAddReplica: {
      adds_started_++;
      NodeId target = node_;
      PartitionId pid = entry.pid;
      cluster_->migration().AddReplica(pid, target, [this, pid, target](bool ok) {
        if (!ok) return;
        adds_completed_++;
        // Enforce the user's replica limit: flag the least useful replica.
        cluster_->migration().EvictIfOverLimit(pid, target);
      });
      break;
    }
    case PlanAction::kRemaster: {
      remasters_started_++;
      cluster_->remaster().Remaster(entry.pid, node_, [](bool) {});
      break;
    }
    case PlanAction::kMovePrimary: {
      moves_started_++;
      cluster_->migration().MovePrimary(entry.pid, node_, [](bool) {});
      break;
    }
  }
}

}  // namespace lion
