#include "core/schism.h"

#include <algorithm>
#include <unordered_map>

namespace lion {

std::vector<Clump> SchismPartitioner::Partition(const HeatGraph& graph,
                                                const RouterTable& table) const {
  int n = table.num_nodes();
  std::vector<PartitionId> order = graph.VerticesByHeat();
  // Schism balances data volume; partitions are equal-sized here, so the
  // per-node capacity is a partition count.
  double cap = static_cast<double>(table.num_partitions()) / std::max(1, n) *
               (1.0 + epsilon_);

  std::unordered_map<PartitionId, NodeId> assign;
  std::vector<int> count(n, 0);

  auto affinity = [&](PartitionId v, NodeId node) {
    double a = 0.0;
    for (const auto& [nbr, w] : graph.Neighbors(v)) {
      auto it = assign.find(nbr);
      if (it != assign.end() && it->second == node) a += w;
    }
    return a;
  };

  // Greedy heaviest-first placement; fall back to the emptiest node when
  // every node is at capacity.
  for (PartitionId v : order) {
    NodeId best = kInvalidNode;
    double best_score = -1e300;
    for (NodeId node = 0; node < n; ++node) {
      if (count[node] + 1 > cap && count[node] > 0) continue;
      double score = affinity(v, node) - 1e-6 * count[node];
      if (score > best_score) {
        best_score = score;
        best = node;
      }
    }
    if (best == kInvalidNode) {
      best = 0;
      for (NodeId node = 1; node < n; ++node)
        if (count[node] < count[best]) best = node;
    }
    assign[v] = best;
    count[best]++;
  }

  // One KL-style refinement sweep: move vertices with positive cut gain.
  for (PartitionId v : order) {
    NodeId cur = assign[v];
    double cur_aff = affinity(v, cur);
    for (NodeId node = 0; node < n; ++node) {
      if (node == cur) continue;
      if (count[node] + 1 > cap) continue;
      if (affinity(v, node) > cur_aff) {
        count[cur]--;
        count[node]++;
        assign[v] = node;
        cur = node;
        cur_aff = affinity(v, cur);
      }
    }
  }

  std::vector<Clump> clumps(n);
  for (NodeId node = 0; node < n; ++node) clumps[node].dst = node;
  for (const auto& [v, node] : assign) {
    clumps[node].pids.push_back(v);
    clumps[node].weight += graph.VertexWeight(v);
  }
  for (auto& c : clumps) std::sort(c.pids.begin(), c.pids.end());
  return clumps;
}

}  // namespace lion
