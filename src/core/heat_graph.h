// The heat graph G(V, E) of the workload analyzer (Sec. IV-A).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace lion {

/// Undirected weighted graph over partitions: vertex weights accumulate
/// per-partition access frequency, edge weights accumulate co-access counts
/// between partition pairs touched by the same transaction.
class HeatGraph {
 public:
  /// Adds one transaction's partition set with the given weight: every
  /// partition's vertex weight grows by `weight`, and every pair gains
  /// `weight` of edge weight. `parts` must be deduplicated.
  void AddAccess(const std::vector<PartitionId>& parts, double weight = 1.0);

  double VertexWeight(PartitionId v) const;
  double EdgeWeight(PartitionId u, PartitionId v) const;

  /// Neighbors of `v` with their raw edge weights.
  const std::unordered_map<PartitionId, double>& Neighbors(PartitionId v) const;

  /// Vertices ordered hottest-first (the paper's hVertices priority queue).
  std::vector<PartitionId> VerticesByHeat() const;

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return edge_count_; }
  double total_vertex_weight() const { return total_vertex_weight_; }
  double total_edge_weight() const { return total_edge_weight_; }

  /// Mean weight over existing edges (0 if the graph has no edges).
  double MeanEdgeWeight() const {
    return edge_count_ == 0 ? 0.0
                            : total_edge_weight_ / static_cast<double>(edge_count_);
  }

  void Clear();

 private:
  std::unordered_map<PartitionId, double> vertices_;
  std::unordered_map<PartitionId, std::unordered_map<PartitionId, double>> adj_;
  size_t edge_count_ = 0;
  double total_vertex_weight_ = 0.0;
  double total_edge_weight_ = 0.0;
};

}  // namespace lion
