// Per-node adaptor applying replica-layout plan entries (Sec. III, V).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "core/plan.h"
#include "replication/cluster.h"

namespace lion {

/// The adaptor component running on each executor node. It receives plan
/// entries from the planner and adjusts the local replica layout by invoking
/// the replica-manipulation machinery: AddRepReqHandler (background copy),
/// remastering, and max-replica eviction.
class Adaptor {
 public:
  Adaptor(Cluster* cluster, NodeId node) : cluster_(cluster), node_(node) {}

  NodeId node() const { return node_; }

  /// Applies one plan entry addressed to this node.
  void Apply(const PlanEntry& entry);

  uint64_t adds_started() const { return adds_started_; }
  uint64_t adds_completed() const { return adds_completed_; }
  uint64_t remasters_started() const { return remasters_started_; }
  uint64_t moves_started() const { return moves_started_; }

 private:
  Cluster* cluster_;
  NodeId node_;
  uint64_t adds_started_ = 0;
  uint64_t adds_completed_ = 0;
  uint64_t remasters_started_ = 0;
  uint64_t moves_started_ = 0;
};

}  // namespace lion
