// Clump generation: clustering co-accessed partitions (Sec. IV-A).
#pragma once

#include <vector>

#include "common/types.h"
#include "core/heat_graph.h"
#include "replication/router_table.h"

namespace lion {

/// A set of co-accessed partitions that should be co-located on one node.
struct Clump {
  std::vector<PartitionId> pids;  // c.pids
  double weight = 0.0;            // c.w — summed vertex weights
  NodeId dst = kInvalidNode;      // c.n — destination chosen by Algorithm 1
};

struct ClumpOptions {
  /// Edge-weight threshold α: neighbors whose effective co-access weight
  /// exceeds it join the seed's clump.
  double alpha = 1.0;
  /// Multiplier applied to edges whose endpoints' primaries currently live
  /// on different nodes (the paper's e_c > e_s priority: cross-node edges
  /// matter more because they generate distributed transactions).
  double cross_node_multiplier = 4.0;
  /// Relative noise filter: edges whose *raw* weight is below
  /// alpha_relative * mean raw edge weight are ignored, so incidental
  /// co-access (e.g. occasional random remote accesses) never glues
  /// unrelated partitions into one giant clump — while genuinely co-accessed
  /// pairs stay clustered whether or not they are already co-located
  /// (placement stability). 0 disables the filter.
  double alpha_relative = 0.5;
};

/// Expands clumps from the hottest unused vertex over edges whose effective
/// weight exceeds α, until all vertices are assigned. Partitions with weak
/// or independent access become singleton clumps.
class ClumpGenerator {
 public:
  explicit ClumpGenerator(ClumpOptions options) : options_(options) {}

  std::vector<Clump> Generate(const HeatGraph& graph,
                              const RouterTable& table) const;

  const ClumpOptions& options() const { return options_; }

 private:
  ClumpOptions options_;
};

}  // namespace lion
