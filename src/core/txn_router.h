// Cost-based transaction routing (Sec. III).
#pragma once

#include <vector>

#include "common/types.h"
#include "core/cost_model.h"
#include "replication/cluster.h"

namespace lion {

/// Lion's transaction router: dispatches a transaction to the node holding
/// the maximum number of requisite replicas, breaking ties by the cost
/// model's execution cost f_c and then by instantaneous worker load.
/// Deterministic given placement, so transactions accessing the same
/// partitions route to the same node (ping-pong avoidance, Sec. III).
class TxnRouter {
 public:
  TxnRouter(Cluster* cluster, CostModelConfig cost)
      : cluster_(cluster), cost_model_(cost) {}

  /// Chooses the executor node for a transaction touching `parts`.
  NodeId Route(const std::vector<PartitionId>& parts) const;

  const CostModel& cost_model() const { return cost_model_; }

 private:
  Cluster* cluster_;
  CostModel cost_model_;
};

}  // namespace lion
