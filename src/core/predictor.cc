#include "core/predictor.h"

#include <algorithm>

#include "harness/registry.h"

namespace lion {

LstmPredictor::LstmPredictor(PredictorConfig config, uint64_t seed)
    : TemplateClassPredictor(std::move(config), seed), lstm_seed_(seed) {}

void LstmPredictor::FitModels() {
  for (WorkloadClass& cls : classes()) {
    if (cls.series.size() < 4) continue;
    if (cls.model == nullptr) cls.model = std::make_unique<LstmModel>();
    auto* model = static_cast<LstmModel*>(cls.model.get());
    double mx = *std::max_element(cls.series.begin(), cls.series.end());
    model->norm = mx > 0.0 ? mx : 1.0;
    std::vector<double> normalized(cls.series.size());
    for (size_t i = 0; i < cls.series.size(); ++i)
      normalized[i] = cls.series[i] / model->norm;
    if (model->lstm == nullptr) {
      model->lstm = std::make_unique<LstmNetwork>(config_.lstm, ++lstm_seed_);
    }
    // Retrain when stale (Sec. IV-C: retrain when MSE degrades).
    double mse = model->lstm->Evaluate(normalized);
    if (mse > config_.retrain_mse) {
      mse = model->lstm->Train(normalized, config_.train_epochs);
    }
    model->last_mse = mse;
  }
}

double LstmPredictor::ForecastClass(const WorkloadClass& cls,
                                    int horizon) const {
  const auto* model = static_cast<const LstmModel*>(cls.model.get());
  if (model == nullptr || model->lstm == nullptr || cls.series.empty()) {
    return cls.series.empty() ? 0.0 : cls.series.back();
  }
  size_t window = std::min(cls.series.size(),
                           static_cast<size_t>(config_.history_window));
  std::vector<double> input(cls.series.end() - window, cls.series.end());
  for (double& v : input) v /= model->norm;
  std::vector<double> forecast = model->lstm->Forecast(input, horizon);
  double value = forecast.empty() ? 0.0 : forecast.back();
  return std::max(0.0, value * model->norm);
}

namespace {

const PredictorRegistrar kRegisterLstm(
    "lstm",
    [](const PredictorContext& ctx) -> std::unique_ptr<PredictorInterface> {
      return std::make_unique<LstmPredictor>(ctx.config, ctx.seed);
    });

}  // namespace

}  // namespace lion
