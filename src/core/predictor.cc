#include "core/predictor.h"

#include <algorithm>
#include <cmath>

#include "ml/matrix.h"

namespace lion {

LstmPredictor::LstmPredictor(PredictorConfig config, uint64_t seed)
    : config_(config), rng_(seed), lstm_seed_(seed) {}

void LstmPredictor::MaybeCloseIntervals(SimTime now) {
  while (now - interval_start_ >= config_.sample_interval) {
    for (Template& t : templates_) {
      t.ar.push_back(t.current);
      if (t.ar.size() > config_.class_window) t.ar.erase(t.ar.begin());
      t.current = 0.0;
    }
    interval_start_ += config_.sample_interval;
    intervals_closed_++;
  }
}

void LstmPredictor::ForceCloseInterval(SimTime now) {
  for (Template& t : templates_) {
    t.ar.push_back(t.current);
    if (t.ar.size() > config_.class_window) t.ar.erase(t.ar.begin());
    t.current = 0.0;
  }
  interval_start_ = now;
  intervals_closed_++;
}

void LstmPredictor::OnTxn(const std::vector<PartitionId>& parts, SimTime now) {
  MaybeCloseIntervals(now);
  auto it = template_index_.find(parts);
  size_t idx;
  if (it == template_index_.end()) {
    if (templates_.size() >= config_.max_templates) return;  // capped
    idx = templates_.size();
    Template t;
    t.parts = parts;
    // Align the new template's history with everyone else's.
    if (!templates_.empty()) t.ar.assign(templates_[0].ar.size(), 0.0);
    templates_.push_back(std::move(t));
    template_index_.emplace(parts, idx);
  } else {
    idx = it->second;
  }
  templates_[idx].current += 1.0;
  templates_[idx].total += 1.0;
}

void LstmPredictor::Reclassify() {
  // Greedy cosine clustering of template arrival-rate vectors: a template
  // joins the first class whose mean series is within distance β.
  std::vector<WorkloadClass> old = std::move(classes_);
  classes_.clear();
  for (size_t i = 0; i < templates_.size(); ++i) {
    const Vec& series = templates_[i].ar;
    if (series.empty()) continue;
    bool placed = false;
    for (WorkloadClass& cls : classes_) {
      double sim = vecops::CosineSimilarity(series, cls.series);
      if (sim >= 1.0 - config_.beta) {
        // Merge: running mean of member series.
        double n = static_cast<double>(cls.members.size());
        for (size_t k = 0; k < cls.series.size() && k < series.size(); ++k) {
          cls.series[k] = (cls.series[k] * n + series[k]) / (n + 1.0);
        }
        cls.members.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) {
      WorkloadClass cls;
      cls.members.push_back(i);
      cls.series = series;
      classes_.push_back(std::move(cls));
    }
  }
  // Reuse trained models where the membership signature survived; otherwise
  // a fresh model trains below. (Cheap heuristic: match by first member.)
  for (WorkloadClass& cls : classes_) {
    for (WorkloadClass& prev : old) {
      if (prev.lstm != nullptr && !prev.members.empty() &&
          prev.members[0] == cls.members[0]) {
        cls.lstm = std::move(prev.lstm);
        cls.norm = prev.norm;
        cls.last_mse = prev.last_mse;
        break;
      }
    }
  }
}

void LstmPredictor::TrainModels() {
  for (WorkloadClass& cls : classes_) {
    if (cls.series.size() < 4) continue;
    double mx = *std::max_element(cls.series.begin(), cls.series.end());
    cls.norm = mx > 0.0 ? mx : 1.0;
    std::vector<double> normalized(cls.series.size());
    for (size_t i = 0; i < cls.series.size(); ++i)
      normalized[i] = cls.series[i] / cls.norm;
    if (cls.lstm == nullptr) {
      cls.lstm = std::make_unique<LstmNetwork>(config_.lstm, ++lstm_seed_);
    }
    // Retrain when stale (Sec. IV-C: retrain when MSE degrades).
    double mse = cls.lstm->Evaluate(normalized);
    if (mse > config_.retrain_mse) {
      mse = cls.lstm->Train(normalized, config_.train_epochs);
    }
    cls.last_mse = mse;
  }
}

double LstmPredictor::ForecastClass(const WorkloadClass& cls, int horizon) const {
  if (cls.lstm == nullptr || cls.series.empty()) {
    return cls.series.empty() ? 0.0 : cls.series.back();
  }
  size_t window = std::min(cls.series.size(),
                           static_cast<size_t>(config_.history_window));
  std::vector<double> input(cls.series.end() - window, cls.series.end());
  for (double& v : input) v /= cls.norm;
  std::vector<double> forecast = cls.lstm->Forecast(input, horizon);
  double value = forecast.empty() ? 0.0 : forecast.back();
  return std::max(0.0, value * cls.norm);
}

double LstmPredictor::WorkloadVariation(SimTime now) {
  MaybeCloseIntervals(now);
  if (classes_.empty()) return 0.0;
  // Normalize by the hottest class's current rate so γ is scale-free.
  double max_rate = 1.0;
  for (const WorkloadClass& cls : classes_) {
    if (!cls.series.empty()) max_rate = std::max(max_rate, cls.series.back());
  }
  double sum = 0.0;
  for (const WorkloadClass& cls : classes_) {
    double current = cls.series.empty() ? 0.0 : cls.series.back();
    double future = ForecastClass(cls, config_.horizon);
    double delta = (future - current) / max_rate;
    sum += delta * delta;
  }
  return std::sqrt(sum / static_cast<double>(classes_.size()));
}

void LstmPredictor::AugmentGraph(HeatGraph* graph, SimTime now) {
  MaybeCloseIntervals(now);
  if (templates_.empty() || config_.wp <= 0.0) return;
  Reclassify();
  TrainModels();

  double wv = WorkloadVariation(now);
  if (wv <= config_.gamma) return;
  triggers_++;

  for (const WorkloadClass& cls : classes_) {
    double current = cls.series.empty() ? 0.0 : cls.series.back();
    double future = ForecastClass(cls, config_.horizon);
    if (future <= current) continue;  // only rising workloads pre-replicate

    // Reservoir-sample member templates (Vitter's Algorithm R).
    std::vector<size_t> reservoir;
    size_t k = config_.sample_size;
    for (size_t i = 0; i < cls.members.size(); ++i) {
      if (reservoir.size() < k) {
        reservoir.push_back(cls.members[i]);
      } else {
        size_t j = static_cast<size_t>(rng_.Uniform(i + 1));
        if (j < k) reservoir[j] = cls.members[i];
      }
    }
    double share = future / std::max(1.0, static_cast<double>(cls.members.size()));
    for (size_t ti : reservoir) {
      const Template& t = templates_[ti];
      if (t.parts.size() < 2) continue;  // no co-access edge to strengthen
      double weight = config_.wp * config_.prediction_scale * share;
      if (weight > 0.0) graph->AddAccess(t.parts, weight);
    }
  }
}

}  // namespace lion
