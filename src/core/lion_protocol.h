// Lion: the paper's transaction processing protocol (Secs. III-IV).
#pragma once

#include <memory>
#include <vector>

#include "core/cost_model.h"
#include "core/geo_placement.h"
#include "core/planner.h"
#include "core/predictor_interface.h"
#include "core/txn_router.h"
#include "protocols/protocol.h"
#include "txn/two_phase_engine.h"

namespace lion {

/// Configuration of a Lion instance. The ablation variants of Table II are
/// expressed by toggling these flags:
///   Lion(R)  : enable_planner, no predictor, standard execution
///   Lion(RW) : enable_planner + predictor, standard execution
///   Lion(RB) : enable_planner, batch execution, no predictor
///   Lion     : everything on
struct LionOptions {
  /// Adaptive replica rearrangement via the planner (Sec. IV-A/B).
  bool enable_planner = true;
  /// Batch execution with asynchronous remastering (Sec. IV-D).
  bool batch_mode = false;
  /// Hold commit acknowledgements to the epoch boundary (group-commit
  /// *visibility*). Batch mode reports epoch-aligned completion times; in
  /// standard mode the worker releases at local commit and replication
  /// stays asynchronous (Sec. V), so this defaults off.
  bool group_commit = false;
  /// Flush a batch early when it reaches this many transactions.
  size_t max_batch_size = 10000;
  PlannerConfig planner;
  CostModelConfig cost;
  /// Region-aware placement constraints (no-ops on a flat topology).
  GeoPlacementConfig geo;
};

/// Lion executes each transaction on a single node whenever that node holds
/// all requisite replicas: directly if they are primaries, after remastering
/// if some are secondaries, and as a regular 2PC distributed transaction
/// otherwise (Sec. III). The planner adapts replica placement in the
/// background; the router sends transactions wherever execution is cheapest.
class LionProtocol : public Protocol {
 public:
  /// `predictor` may be null (no workload prediction). The protocol owns
  /// the predictor for its whole lifetime — callers hand it over and keep,
  /// at most, the raw observer pointer from predictor().
  LionProtocol(Cluster* cluster, MetricsCollector* metrics, LionOptions options,
               std::unique_ptr<PredictorInterface> predictor = nullptr);

  std::string name() const override {
    return options_.batch_mode ? "Lion(batch)" : "Lion";
  }
  void Start() override;
  /// Halts the planner (no new migrations/remasters) and flushes any
  /// batch-buffered transactions so their completions still fire.
  void Stop() override;
  /// Epoch boundary (batch mode): flush the buffered batch.
  void OnEpoch(SimTime now) override;

  void SubmitTxn(TxnPtr txn, TxnDoneFn done) override;

  /// Lion's geo constraints, exposed so the chaos harness can make
  /// failover elections and crash re-provisioning respect them.
  const GeoPlacement* geo_placement() const override { return &geo_placement_; }

  Planner* planner() { return planner_.get(); }
  PredictorInterface* predictor() { return predictor_.get(); }
  const TxnRouter& router() const { return router_; }

  uint64_t remaster_requests() const { return remaster_requests_; }
  uint64_t remaster_conversions() const { return remaster_conversions_; }
  uint64_t fallback_distributed() const { return fallback_distributed_; }

 private:
  struct Batch;

  void SubmitStandard(TxnPtr txn, TxnDoneFn done);
  void SubmitBatch(TxnPtr txn, TxnDoneFn done);
  void FlushBatch();
  void ExecuteBatch(const std::shared_ptr<Batch>& batch);
  void Execute(Transaction* txn, NodeId dst, ExecClass cls,
               std::function<void(bool)> cb);

  /// Decides whether remastering `pid` onto `dst` beats distributed
  /// execution under the cost model: the remastering cost (Eq. 4, scaled by
  /// w_r) must be below the cost of executing the transaction's `ops_on_pid`
  /// operations remotely. Stealing a whole partition's mastership for a
  /// single remote op is never worthwhile; a 5-op batch usually is.
  bool WorthRemastering(PartitionId pid, NodeId dst, size_t ops_on_pid) const;

  LionOptions options_;
  TwoPhaseEngine engine_;
  TxnRouter router_;
  CostModel cost_model_;
  GeoPlacement geo_placement_;
  std::unique_ptr<PredictorInterface> predictor_;
  std::unique_ptr<Planner> planner_;

  // Batch mode state.
  std::shared_ptr<Batch> current_batch_;

  uint64_t remaster_requests_ = 0;
  uint64_t remaster_conversions_ = 0;
  uint64_t fallback_distributed_ = 0;
};

}  // namespace lion
