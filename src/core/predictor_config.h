// Configuration of the workload prediction pipeline (Sec. IV-C), shared by
// every predictor implementation. `kind` selects the implementation through
// PredictorRegistry (harness/registry.h); "off" disables prediction even
// for protocol variants that would otherwise construct one.
#pragma once

#include <string>

#include "common/types.h"
#include "ml/lstm.h"

namespace lion {

struct PredictorConfig {
  /// Predictor implementation, resolved through PredictorRegistry
  /// ("lstm", "ewma", ...); "off" disables the prediction mechanism.
  std::string kind = "lstm";
  /// Sampling interval i of the arrival-rate history (Eq. 5).
  SimTime sample_interval = 100 * kMillisecond;
  /// Cap on tracked templates (hottest retained).
  size_t max_templates = 512;
  /// β: cosine-distance threshold below which templates merge into one
  /// workload class (similarity >= 1 - β).
  double beta = 0.15;
  /// Length of the arrival-rate window kept per class.
  size_t class_window = 64;
  /// LSTM input length (paper: preceding ten periods).
  int history_window = 10;
  /// h of Eq. 6: forecast horizon in sampling intervals.
  int horizon = 3;
  /// γ: workload-variation threshold that triggers pre-replication.
  double gamma = 0.10;
  /// w_p: weight coefficient of predicted workloads in the heat graph
  /// (0 disables the prediction mechanism's influence).
  double wp = 1.0;
  /// Scale from forecast arrival rate (txns/interval) to graph weight.
  double prediction_scale = 1.0;
  /// Reservoir sample size: templates drawn per rising workload class.
  size_t sample_size = 8;
  /// Training epochs per planning round, and the MSE above which a class
  /// model is retrained (Sec. IV-C: retrain to maintain accuracy).
  int train_epochs = 10;
  double retrain_mse = 0.01;
  /// Level smoothing factor of the EWMA/Holt baseline predictor.
  double ewma_alpha = 0.5;
  /// Trend smoothing factor of the EWMA/Holt baseline predictor.
  double ewma_trend = 0.3;
  /// Season length m (in sampling intervals) of the seasonal-naive baseline
  /// predictor: ŷ(T+h) = y(T+h−m).
  int seasonal_period = 10;
  LstmConfig lstm;  // defaults: 2 layers x 20 hidden, matching the paper
};

}  // namespace lion
