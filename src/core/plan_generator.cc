#include "core/plan_generator.h"

#include <algorithm>
#include <limits>

namespace lion {

NodeId PlanGenerator::FindDstNode(const Clump& clump, const RouterTable& table,
                                  const std::vector<double>& balance,
                                  std::vector<double>* costs_out) const {
  NodeId best = kInvalidNode;
  double best_cost = std::numeric_limits<double>::max();
  for (NodeId n = 0; n < table.num_nodes(); ++n) {
    double cost = cost_model_.PlacementCost(table, clump, n);
    if (costs_out != nullptr) (*costs_out)[n] = cost;
    if (!table.IsNodeUp(n)) continue;  // never place on a failed node
    if (geo_ != nullptr && !geo_->AllowsClumpOn(table, clump, n)) continue;
    if (best == kInvalidNode || cost < best_cost ||
        (cost == best_cost && balance[n] < balance[best])) {
      best_cost = cost;
      best = n;
    }
  }
  return best == kInvalidNode ? 0 : best;
}

bool PlanGenerator::CheckBalance(double avg,
                                 const std::vector<double>& balance) const {
  double theta = avg * (1.0 + config_.epsilon);
  for (double b : balance) {
    if (b > theta) return false;
  }
  return true;
}

ReconfigurationPlan PlanGenerator::Rearrange(std::vector<Clump> clumps,
                                             const RouterTable& table) const {
  const int num_nodes = table.num_nodes();
  ReconfigurationPlan plan;

  // mc: interim cost matrix, one row per clump (Algorithm 1 line 2).
  std::vector<std::vector<double>> mc(clumps.size(),
                                      std::vector<double>(num_nodes, 0.0));
  std::vector<double> balance(num_nodes, 0.0);
  // q_i: clumps assigned to node i, kept sorted ascending by weight (line 6).
  std::vector<std::vector<size_t>> q(num_nodes);

  // --- Step 1: clump dispatching (lines 4-7) --------------------------------
  double load_sum = 0.0;
  for (size_t i = 0; i < clumps.size(); ++i) {
    clumps[i].dst = FindDstNode(clumps[i], table, balance, &mc[i]);
    plan.total_cost += mc[i][clumps[i].dst];
    q[clumps[i].dst].push_back(i);
    balance[clumps[i].dst] += clumps[i].weight;
    load_sum += clumps[i].weight;
  }
  for (auto& queue : q) {
    std::sort(queue.begin(), queue.end(), [&clumps](size_t a, size_t b) {
      return clumps[a].weight < clumps[b].weight;
    });
  }

  // --- Step 2: load fine-tuning (lines 8-25) --------------------------------
  double avg = load_sum / num_nodes;
  bool is_done = false;
  while (!CheckBalance(avg, balance) && !is_done) {
    int step = config_.step_budget;

    // FindOINodes: overloaded (above θ) and idle (below average) nodes.
    double theta = avg * (1.0 + config_.epsilon);
    std::vector<NodeId> overloaded, idle;
    for (NodeId n = 0; n < num_nodes; ++n) {
      if (balance[n] > theta) overloaded.push_back(n);
      else if (balance[n] < avg && table.IsNodeUp(n)) idle.push_back(n);
    }
    if (overloaded.empty() || idle.empty()) break;

    while (!CheckBalance(avg, balance) && step > 0) {
      // PickClump: from the most loaded node, the largest clump that fits
      // the gap; destination = the idle node with the lowest interim cost.
      bool found = false;
      size_t pick_idx = 0;
      NodeId pick_dst = kInvalidNode;

      std::sort(overloaded.begin(), overloaded.end(),
                [&balance](NodeId a, NodeId b) { return balance[a] > balance[b]; });
      for (NodeId on : overloaded) {
        double gap = balance[on] - avg;
        // q[on] ascends by weight: scan from the back for the largest <= gap.
        for (auto it = q[on].rbegin(); it != q[on].rend(); ++it) {
          size_t ci = *it;
          if (clumps[ci].dst != on) continue;  // already moved away
          if (clumps[ci].weight > gap || clumps[ci].weight <= 0.0) continue;
          double best_cost = std::numeric_limits<double>::max();
          for (NodeId in : idle) {
            if (geo_ != nullptr && !geo_->AllowsClumpOn(table, clumps[ci], in))
              continue;
            if (mc[ci][in] < best_cost) {
              best_cost = mc[ci][in];
              pick_dst = in;
            }
          }
          if (pick_dst != kInvalidNode) {
            pick_idx = ci;
            found = true;
          }
          break;
        }
        if (found) break;
      }
      if (!found) {
        is_done = true;
        break;
      }

      // Move the clump (lines 18-19).
      NodeId from = clumps[pick_idx].dst;
      balance[from] -= clumps[pick_idx].weight;
      balance[pick_dst] += clumps[pick_idx].weight;
      plan.total_cost += mc[pick_idx][pick_dst] - mc[pick_idx][from];
      clumps[pick_idx].dst = pick_dst;
      q[pick_dst].push_back(pick_idx);
      plan.fine_tune_moves++;

      // Refresh overloaded/idle membership cheaply (lines 20-23).
      double th = avg * (1.0 + config_.epsilon);
      overloaded.erase(std::remove_if(overloaded.begin(), overloaded.end(),
                                      [&](NodeId n) { return balance[n] <= th; }),
                       overloaded.end());
      idle.erase(std::remove_if(idle.begin(), idle.end(),
                                [&](NodeId n) { return balance[n] >= avg; }),
                 idle.end());
      if (overloaded.empty() || idle.empty()) {
        step = 0;
      } else {
        step--;
      }
    }
    if (step == config_.step_budget) is_done = true;  // no progress (line 24)
  }

  plan.assignments = std::move(clumps);
  return plan;
}

}  // namespace lion
