#include "core/planner.h"

#include <unordered_map>

#include "core/heat_graph.h"
#include "sim/network.h"

namespace lion {

Planner::Planner(Cluster* cluster, PlannerConfig config,
                 PredictorInterface* predictor)
    : cluster_(cluster),
      config_(config),
      predictor_(predictor),
      clump_generator_(config.clump),
      plan_generator_(config.plan),
      schism_(config.plan.epsilon),
      tick_timer_(cluster->sim(), [this](SimTime) { RunOnce(); }) {
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    adaptors_.push_back(std::make_unique<Adaptor>(cluster_, n));
  }
}

void Planner::Start() { tick_timer_.Start(config_.interval); }

void Planner::Stop() { tick_timer_.Stop(); }

void Planner::RecordTxn(const std::vector<PartitionId>& parts, SimTime now) {
  history_.push_back(parts);
  if (history_.size() > config_.history_capacity) history_.pop_front();
  if (predictor_ != nullptr) predictor_->OnTxn(parts, now);
}

void Planner::RunOnce() {
  if (history_.size() < config_.min_history) return;

  // 1. Workload analysis: heat graph over the last B transactions, plus the
  //    K predicted ones injected by the predictor (Fig. 5c).
  HeatGraph graph;
  for (const auto& parts : history_) graph.AddAccess(parts, 1.0);
  if (predictor_ != nullptr) {
    predictor_->AugmentGraph(&graph, cluster_->sim()->Now());
  }

  // 2. Clump generation + plan generation.
  ReconfigurationPlan plan;
  std::vector<PlanEntry> entries;
  if (config_.strategy == PartitioningStrategy::kSchism) {
    // Replica-blind repartitioning: every partition whose assigned node is
    // not its current primary is moved by blocking full migration.
    plan.assignments = schism_.Partition(graph, cluster_->router());
    for (const Clump& clump : plan.assignments) {
      for (PartitionId pid : clump.pids) {
        if (cluster_->router().PrimaryOf(pid) != clump.dst) {
          entries.push_back(PlanEntry{PlanAction::kMovePrimary, pid, clump.dst});
        }
      }
    }
  } else {
    // Algorithm 1: replica-aware clump dispatch + load fine-tuning.
    std::vector<Clump> clumps =
        clump_generator_.Generate(graph, cluster_->router());
    plan = plan_generator_.Rearrange(std::move(clumps), cluster_->router());
    entries = plan.ToEntries(cluster_->router());
  }
  last_plan_ = plan;
  plans_generated_++;

  // 3. Dispatch entries to each node's adaptor over the network. The
  //    adaptor applies them asynchronously; foreground transactions are
  //    never stalled by planning.
  std::unordered_map<NodeId, std::vector<PlanEntry>> by_node;
  for (const PlanEntry& e : entries) by_node[e.node].push_back(e);
  for (auto& [node, node_entries] : by_node) {
    uint64_t bytes = MessageSizes::kHeader +
                     node_entries.size() * MessageSizes::kPlanEntry;
    Adaptor* adaptor = adaptors_[node].get();
    auto payload = std::make_shared<std::vector<PlanEntry>>(std::move(node_entries));
    entries_dispatched_ += payload->size();
    cluster_->network().Send(planner_endpoint(), node, bytes,
                             [adaptor, payload]() {
                               for (const PlanEntry& e : *payload) {
                                 adaptor->Apply(e);
                               }
                             });
  }

  // 4. Age the frequency statistics so the next round tracks recent load.
  cluster_->router().DecayFrequencies(config_.frequency_decay);
}

}  // namespace lion
