#include "core/geo_placement.h"

#include <algorithm>

#include "core/lion_protocol.h"

namespace lion {

GeoPlacement::GeoPlacement(const GeoPlacementConfig& config,
                           const Topology* topology)
    : config_(config), topology_(topology) {
  std::sort(config_.replica_regions.begin(), config_.replica_regions.end());
  config_.replica_regions.erase(std::unique(config_.replica_regions.begin(),
                                            config_.replica_regions.end()),
                                config_.replica_regions.end());
}

Status GeoPlacement::Validate(const LionOptions& lion,
                              const ClusterConfig& cluster,
                              const std::string& path) {
  const GeoPlacementConfig& geo = lion.geo;
  int regions = cluster.net.regions;
  for (size_t i = 0; i < geo.replica_regions.size(); ++i) {
    int r = geo.replica_regions[i];
    if (r < 0 || r >= regions) {
      return Status::InvalidArgument(
          path + ".replica_regions[" + std::to_string(i) +
          "]: unknown region " + std::to_string(r) +
          " (regions = " + std::to_string(regions) + ")");
    }
  }
  if (geo.min_replicas_per_region > cluster.max_replicas) {
    return Status::InvalidArgument(
        path + ".min_replicas_per_region: " +
        std::to_string(geo.min_replicas_per_region) +
        " exceeds cluster.max_replicas (" +
        std::to_string(cluster.max_replicas) + ")");
  }
  return Status::OK();
}

bool GeoPlacement::AllowsRegion(int region) const {
  if (config_.replica_regions.empty()) return true;
  return std::binary_search(config_.replica_regions.begin(),
                            config_.replica_regions.end(), region);
}

bool GeoPlacement::AllowsPrimaryOn(const RouterTable& table, PartitionId pid,
                                   NodeId n) const {
  if (!active()) return true;
  if (!AllowsRegion(topology_->region_of(n))) return false;
  if (config_.hot_primary_pin_threshold > 0.0 &&
      table.NormalizedFrequency(pid) >= config_.hot_primary_pin_threshold &&
      topology_->cross_region(table.PrimaryOf(pid), n)) {
    return false;
  }
  return true;
}

bool GeoPlacement::AllowsClumpOn(const RouterTable& table, const Clump& clump,
                                 NodeId n) const {
  if (!active()) return true;
  for (PartitionId pid : clump.pids) {
    if (!AllowsPrimaryOn(table, pid, n)) return false;
  }
  return true;
}

double GeoPlacement::MigrationMultiplier(NodeId from, NodeId to) const {
  if (!active() || !topology_->cross_region(from, to)) return 1.0;
  return config_.wan_migration_multiplier;
}

int GeoPlacement::EnsureRegionalReplicas(RouterTable* table,
                                         int max_replicas) const {
  if (!active() || config_.min_replicas_per_region <= 0) return 0;

  // Nodes per region, ascending node id: provisioning is deterministic.
  std::vector<std::vector<NodeId>> region_nodes(
      static_cast<size_t>(topology_->regions()));
  for (NodeId n = 0; n < table->num_nodes(); ++n) {
    region_nodes[static_cast<size_t>(topology_->region_of(n))].push_back(n);
  }

  int added = 0;
  for (PartitionId pid = 0; pid < table->num_partitions(); ++pid) {
    ReplicaGroup* group = table->mutable_group(pid);
    for (int r = 0; r < topology_->regions(); ++r) {
      if (!AllowsRegion(r)) continue;
      int in_region = 0;
      for (NodeId n : region_nodes[static_cast<size_t>(r)]) {
        if (n == group->primary() || group->HasSecondary(n)) in_region++;
      }
      for (NodeId n : region_nodes[static_cast<size_t>(r)]) {
        if (in_region >= config_.min_replicas_per_region) break;
        if (group->LiveReplicaCount() >= max_replicas) break;
        if (!table->IsNodeUp(n) || group->HasReplica(n)) continue;
        group->AddSecondary(n, group->primary_lsn());
        in_region++;
        added++;
      }
    }
  }
  return added;
}

}  // namespace lion
