#include "core/heat_graph.h"

#include <algorithm>

namespace lion {

namespace {
const std::unordered_map<PartitionId, double> kNoNeighbors;
}  // namespace

void HeatGraph::AddAccess(const std::vector<PartitionId>& parts, double weight) {
  for (PartitionId p : parts) {
    vertices_[p] += weight;
    total_vertex_weight_ += weight;
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    for (size_t j = i + 1; j < parts.size(); ++j) {
      PartitionId u = parts[i], v = parts[j];
      if (u == v) continue;
      auto& uv = adj_[u][v];
      if (uv == 0.0) edge_count_++;
      uv += weight;
      adj_[v][u] += weight;
      total_edge_weight_ += weight;
    }
  }
}

double HeatGraph::VertexWeight(PartitionId v) const {
  auto it = vertices_.find(v);
  return it == vertices_.end() ? 0.0 : it->second;
}

double HeatGraph::EdgeWeight(PartitionId u, PartitionId v) const {
  auto it = adj_.find(u);
  if (it == adj_.end()) return 0.0;
  auto jt = it->second.find(v);
  return jt == it->second.end() ? 0.0 : jt->second;
}

const std::unordered_map<PartitionId, double>& HeatGraph::Neighbors(
    PartitionId v) const {
  auto it = adj_.find(v);
  return it == adj_.end() ? kNoNeighbors : it->second;
}

std::vector<PartitionId> HeatGraph::VerticesByHeat() const {
  std::vector<PartitionId> out;
  out.reserve(vertices_.size());
  for (const auto& [pid, w] : vertices_) out.push_back(pid);
  std::sort(out.begin(), out.end(), [this](PartitionId a, PartitionId b) {
    double wa = VertexWeight(a), wb = VertexWeight(b);
    if (wa != wb) return wa > wb;
    return a < b;  // deterministic tie-break
  });
  return out;
}

void HeatGraph::Clear() {
  vertices_.clear();
  adj_.clear();
  edge_count_ = 0;
  total_vertex_weight_ = 0.0;
  total_edge_weight_ = 0.0;
}

}  // namespace lion
