// Region-aware placement constraints for Lion's replica provisioning.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/clump.h"
#include "replication/cluster_config.h"
#include "replication/router_table.h"
#include "sim/topology.h"

namespace lion {

struct LionOptions;

/// Geo constraints on the planner and replication manager (lion.geo.*).
/// The defaults constrain nothing, so flat single-region experiments are
/// unaffected.
struct GeoPlacementConfig {
  /// Regions allowed to host replicas; empty allows every region.
  std::vector<int> replica_regions;
  /// Minimum live replicas of every partition in each allowed region,
  /// enforced at protocol start (capped by cluster.max_replicas). 0 leaves
  /// the initial placement alone.
  int min_replicas_per_region = 0;
  /// Multiplies the migration term of the placement cost model for
  /// cross-region copies, so the provisioner prices WAN moves above LAN
  /// moves. 1 prices them equally.
  double wan_migration_multiplier = 1.0;
  /// Partitions whose normalized access frequency reaches this threshold
  /// are write-hot: their primary may not move across regions (planner and
  /// remastering both respect the pin). 0 disables the pin.
  double hot_primary_pin_threshold = 0.0;
};

/// Applies GeoPlacementConfig against a concrete topology. Plan generation
/// asks it which nodes may receive a clump, the cost model scales WAN
/// migrations through it, and LionProtocol::Start uses it to guarantee the
/// min-replicas-per-region invariant.
class GeoPlacement {
 public:
  /// Unconstrained placement (no topology attached).
  GeoPlacement() = default;

  /// `topology` must outlive this object (it is owned by the cluster's
  /// network).
  GeoPlacement(const GeoPlacementConfig& config, const Topology* topology);

  /// Cross-field validation of lion.geo.* against the cluster topology
  /// (region indices in range). Called from ExperimentBuilder::Validate.
  static Status Validate(const LionOptions& lion, const ClusterConfig& cluster,
                         const std::string& path = "lion.geo");

  bool active() const { return topology_ != nullptr; }

  /// Whether `region` may host replicas under replica_regions.
  bool AllowsRegion(int region) const;

  bool AllowsNode(NodeId node) const {
    return !active() || AllowsRegion(topology_->region_of(node));
  }

  /// Whether `pid`'s primary may land on `n`: the node's region must be
  /// allowed, and a write-hot partition may not cross regions away from its
  /// current primary.
  bool AllowsPrimaryOn(const RouterTable& table, PartitionId pid,
                       NodeId n) const;

  /// Whether dispatching `clump` to `n` is allowed: AllowsPrimaryOn for
  /// every partition in the clump.
  bool AllowsClumpOn(const RouterTable& table, const Clump& clump,
                     NodeId n) const;

  /// Cost multiplier for migrating a replica from `from` to `to`
  /// (wan_migration_multiplier across regions, 1 within).
  double MigrationMultiplier(NodeId from, NodeId to) const;

  /// Adds secondaries (caught up to the primary LSN — a bootstrap-time
  /// provision, before any traffic) until every partition holds at least
  /// min_replicas_per_region live replicas in each allowed region, stopping
  /// at `max_replicas` per partition. Down nodes are skipped. Returns the
  /// number of replicas added.
  int EnsureRegionalReplicas(RouterTable* table, int max_replicas) const;

 private:
  GeoPlacementConfig config_;
  const Topology* topology_ = nullptr;
};

}  // namespace lion
