// Seasonal-naive baseline workload predictor.
//
// Same three-phase pipeline as the LSTM and EWMA predictors (template
// tracking, cosine-β classing, forecast + wv(t, h) trigger — all inherited
// from TemplateClassPredictor), but the per-class forecast is the textbook
// seasonal-naive rule: ŷ(T+h) = y(T+h−m) with season length m =
// `predictor.seasonal_period` sampling intervals. Zero parameters, zero
// training, and the strongest simple baseline for workloads with periodic
// drift (the dynamic hotspot scenarios repeat with `dynamic_period`):
// against it, the LSTM's gains must come from modeling, not momentum.
// Registered in PredictorRegistry as "seasonal".
#pragma once

#include <cstdint>

#include "core/predictor_config.h"
#include "core/template_predictor.h"

namespace lion {

class SeasonalPredictor : public TemplateClassPredictor {
 public:
  SeasonalPredictor(PredictorConfig config, uint64_t seed = 7);

 protected:
  /// Seasonal-naive has no parameters to fit.
  void FitModels() override {}
  double ForecastClass(const WorkloadClass& cls, int horizon) const override;
};

}  // namespace lion
