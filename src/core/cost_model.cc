#include "core/cost_model.h"

#include <cmath>

#include "core/geo_placement.h"

namespace lion {

double CostModel::CntRemaster(const RouterTable& table, PartitionId v,
                              NodeId n) const {
  if (table.PrimaryOf(v) == n) return 0.0;
  if (!table.HasSecondary(n, v)) return 0.0;
  double f = table.NormalizedFrequency(v);
  return 1.0 + std::log2(f + 1.0);
}

double CostModel::CntMigrate(const RouterTable& table, PartitionId v,
                             NodeId n) const {
  if (table.HasReplica(n, v)) return 0.0;
  // The copy flows from v's primary to n; a cross-region copy is priced at
  // the WAN multiplier.
  return geo_ == nullptr ? 1.0
                         : geo_->MigrationMultiplier(table.PrimaryOf(v), n);
}

double CostModel::PlacementCost(const RouterTable& table, const Clump& clump,
                                NodeId n) const {
  double remaster_sum = 0.0;
  double migrate_sum = 0.0;
  for (PartitionId v : clump.pids) {
    remaster_sum += CntRemaster(table, v, n);
    migrate_sum += CntMigrate(table, v, n);
  }
  return config_.wr * remaster_sum + config_.wm * migrate_sum;
}

double CostModel::ExecutionCost(const RouterTable& table,
                                const std::vector<PartitionId>& parts,
                                NodeId n) const {
  double cost = 0.0;
  for (PartitionId v : parts) {
    if (table.PrimaryOf(v) == n) continue;
    if (table.HasSecondary(n, v)) {
      cost += config_.wr * (1.0 + std::log2(table.NormalizedFrequency(v) + 1.0));
    } else {
      cost += config_.remote_access;
    }
  }
  return cost;
}

}  // namespace lion
