#include "core/seasonal_predictor.h"

#include <memory>

#include "harness/registry.h"

namespace lion {

SeasonalPredictor::SeasonalPredictor(PredictorConfig config, uint64_t seed)
    : TemplateClassPredictor(std::move(config), seed) {}

double SeasonalPredictor::ForecastClass(const WorkloadClass& cls,
                                        int horizon) const {
  const std::vector<double>& s = cls.series;
  if (s.empty()) return 0.0;
  const int m = config_.seasonal_period;
  if (m < 1 || s.size() < static_cast<size_t>(m)) {
    // Not a full season observed yet: fall back to the last value (the
    // plain naive forecast).
    return s.back();
  }
  // ŷ(T+h) = y(T+h−m), with h wrapped into one season (forecasting past a
  // full season repeats it: h and h+m share a prediction).
  int h = horizon < 1 ? 1 : (horizon - 1) % m + 1;
  // With T = s.size()-1 the source index T+h−m lies in the last season.
  return s[s.size() - 1 + static_cast<size_t>(h) - static_cast<size_t>(m)];
}

namespace {

const PredictorRegistrar kRegisterSeasonal(
    "seasonal",
    [](const PredictorContext& ctx) -> std::unique_ptr<PredictorInterface> {
      return std::make_unique<SeasonalPredictor>(ctx.config, ctx.seed);
    });

}  // namespace

}  // namespace lion
