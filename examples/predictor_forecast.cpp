// Workload prediction demo: feeds the LSTM predictor a periodic workload
// (quiet phases alternating with bursts of co-access on partitions 7 and 8)
// and shows the forecast, the workload-variation metric wv (Eq. 6), and the
// predicted co-access edges injected into the heat graph (Fig. 5).
#include <cstdio>

#include "core/heat_graph.h"
#include "core/predictor.h"

using namespace lion;

int main() {
  PredictorConfig cfg;
  cfg.sample_interval = 100 * kMillisecond;
  cfg.horizon = 2;
  cfg.gamma = 0.05;
  cfg.train_epochs = 120;
  cfg.history_window = 12;
  cfg.lstm.hidden = 10;
  cfg.prediction_scale = 10.0;
  LstmPredictor predictor(cfg);

  // Period-4 arrival pattern: 2 quiet intervals, then 2 bursts (x9 rate).
  auto rate_at = [](int interval) { return interval % 4 < 2 ? 1 : 9; };
  SimTime t = 0;
  std::printf("observed arrival rates (txns/interval): ");
  for (int interval = 0; interval < 26; ++interval) {
    int rate = rate_at(interval);
    std::printf("%d ", rate);
    for (int i = 0; i < rate; ++i) predictor.OnTxn({7, 8}, t);
    t += cfg.sample_interval;
  }
  std::printf("\n(history ends in a quiet phase, right before a burst)\n\n");

  HeatGraph graph;
  predictor.AugmentGraph(&graph, t);

  std::printf("templates identified : %zu\n", predictor.num_templates());
  std::printf("workload classes     : %zu\n", predictor.num_classes());
  std::printf("wv(t, h=2)           : %.3f (gamma = %.2f)\n",
              predictor.WorkloadVariation(t), cfg.gamma);
  std::printf("pre-replication fired: %s\n",
              predictor.pre_replications_triggered() > 0 ? "yes" : "no");
  std::printf("predicted co-access edge (P7, P8) weight: %.1f\n",
              graph.EdgeWeight(7, 8));
  std::printf("\nThe planner would now pre-provision replicas so partitions\n"
              "7 and 8 are co-located before the burst arrives (Sec. IV-C).\n");
  return 0;
}
