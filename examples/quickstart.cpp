// Quickstart: build a simulated cluster, run Lion on a YCSB-style workload,
// and print what happened. Demonstrates the core public API directly
// (Simulator, Cluster, LionProtocol, drivers and metrics).
#include <cstdio>
#include <memory>

#include "core/lion_protocol.h"
#include "core/predictor.h"
#include "harness/driver.h"
#include "metrics/metrics.h"
#include "replication/cluster.h"
#include "sim/simulator.h"
#include "workload/ycsb.h"

using namespace lion;

int main() {
  // 1. A 4-node cluster, 8 workers each, 12 partitions per node with 2
  //    replicas initially placed round-robin (the paper's default setup).
  ClusterConfig cluster_cfg;
  cluster_cfg.num_nodes = 4;
  cluster_cfg.workers_per_node = 8;
  cluster_cfg.partitions_per_node = 12;
  cluster_cfg.records_per_partition = 10000;
  cluster_cfg.init_replicas = 2;
  cluster_cfg.max_replicas = 4;

  Simulator sim(/*seed=*/42);
  Cluster cluster(&sim, cluster_cfg);
  MetricsCollector metrics;

  // 2. Lion with its planner (replica rearrangement) and LSTM predictor.
  //    The protocol owns the predictor for its whole lifetime.
  LionOptions options;
  options.planner.interval = 250 * kMillisecond;
  LionProtocol lion(&cluster, &metrics, options,
                    std::make_unique<LstmPredictor>(PredictorConfig{}));

  // 3. A skewed YCSB workload where half the transactions span two nodes.
  YcsbConfig workload_cfg;
  workload_cfg.cross_ratio = 0.5;
  workload_cfg.skew_factor = 0.8;
  YcsbWorkload workload(cluster_cfg, workload_cfg);

  // 4. Drive it closed-loop for three simulated seconds.
  cluster.Start();
  lion.Start();
  ClosedLoopDriver driver(&sim, &lion, &workload, &metrics, /*concurrency=*/32);
  driver.Start();
  sim.RunUntil(3 * kSecond);
  driver.Stop();
  lion.Stop();

  // 5. Report.
  std::printf("Lion quickstart (3 simulated seconds)\n");
  std::printf("  committed txns      : %llu (%.0f txn/s)\n",
              (unsigned long long)metrics.committed(),
              metrics.Throughput(sim.Now()));
  std::printf("  single-node         : %llu\n",
              (unsigned long long)metrics.single_node());
  std::printf("  after remastering   : %llu\n",
              (unsigned long long)metrics.remastered());
  std::printf("  distributed (2PC)   : %llu\n",
              (unsigned long long)metrics.distributed());
  std::printf("  aborts/retries      : %llu\n",
              (unsigned long long)metrics.aborts());
  std::printf("  p50 / p95 latency   : %.0f / %.0f us\n",
              metrics.latency().Percentile(0.5) / 1000.0,
              metrics.latency().Percentile(0.95) / 1000.0);
  std::printf("  plans generated     : %llu\n",
              (unsigned long long)lion.planner()->plans_generated());
  std::printf("  remaster conversions: %llu\n",
              (unsigned long long)lion.remaster_conversions());
  double dist_share = metrics.committed() > 0
                          ? 100.0 * metrics.distributed() / metrics.committed()
                          : 0.0;
  std::printf("Lion kept %.2f%% of transactions distributed.\n", dist_share);
  return 0;
}
