// TPC-C NewOrder demo: customers occasionally order stock from a partner
// warehouse, creating cross-warehouse transactions. Compares four protocols
// on the same workload.
#include <cstdio>

#include "harness/experiment.h"

using namespace lion;

int main() {
  std::printf("TPC-C NewOrder, 4 nodes x 4 warehouses, 30%% remote orders\n\n");
  std::printf("%-8s %12s %10s %10s %12s\n", "protocol", "txn/s", "p50(us)",
              "p95(us)", "distributed");

  for (const char* protocol : {"2PC", "Clay", "Lion", "Lion(B)"}) {
    ExperimentBuilder builder;
    builder.Protocol(protocol)
        .Workload("tpcc")
        .Warmup(1 * kSecond)
        .Duration(2 * kSecond);
    builder.config().cluster.num_nodes = 4;
    builder.config().cluster.partitions_per_node = 4;  // 4 warehouses/node
    builder.config().tpcc.remote_ratio = 0.3;
    builder.config().tpcc.payment_ratio = 0.1;
    // NewOrder txns are ~10x heavier than YCSB's: size the batch window so
    // one epoch's batch fits the cluster's worker capacity.
    if (ProtocolRegistry::Global().IsBatch(protocol)) {
      builder.Concurrency(600);
    }
    ExperimentResult res;
    Status status = builder.Run(&res);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    double dist_pct = res.committed > 0
                          ? 100.0 * res.distributed / res.committed
                          : 0.0;
    std::printf("%-8s %12.0f %10.0f %10.0f %11.2f%%\n", protocol,
                res.throughput, res.p50_us, res.p95_us, dist_pct);
  }
  std::printf("\nLion converts cross-warehouse NewOrders into single-node\n"
              "transactions by co-locating partner warehouses' replicas.\n");
  return 0;
}
