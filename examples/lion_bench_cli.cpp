// Command-line experiment runner: compose any protocol x workload x cluster
// configuration without writing code. The entire flag surface is derived
// from the config schema (harness/config_schema.h) — every declared field
// is settable as --<dotted.path>=<value>, configs load from JSON files, and
// JSON sweep grids run through the multi-threaded SweepRunner. There are no
// hand-rolled per-field flag cases here.
//
// Usage examples:
//   lion_bench_cli --protocol=Lion --workload=ycsb --ycsb.cross_ratio=0.8
//   lion_bench_cli --config=examples/configs/quickstart.json --json
//   lion_bench_cli --config=exp.json --lion.planner.interval_ms=250
//   lion_bench_cli --sweep=examples/configs/fig7_cross_ratio.json --repeat=3
//   lion_bench_cli --flags          # the full derived flag listing
//   lion_bench_cli --list
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "harness/config_schema.h"
#include "harness/experiment.h"
#include "harness/sweep_cli.h"
#include "harness/sweep_spec.h"

using namespace lion;

namespace {

void PrintRegistries() {
  std::printf("protocols:");
  for (const std::string& p : ProtocolRegistry::Global().Names()) {
    std::printf(" %s%s", p.c_str(),
                ProtocolRegistry::Global().IsBatch(p) ? "*" : "");
  }
  std::printf("   (* = batch execution)\nworkloads:");
  for (const std::string& w : WorkloadRegistry::Global().Names()) {
    std::printf(" %s", w.c_str());
  }
  std::printf("\npredictors:");
  for (const std::string& p : PredictorRegistry::Global().Names()) {
    std::printf(" %s", p.c_str());
  }
  std::printf("   (select with --predictor.kind; \"off\" disables)\n");
}

void PrintUsage() {
  std::printf(
      "lion_bench_cli — run simulated experiments from the config schema\n\n"
      "single run:\n"
      "  --config=FILE      load an ExperimentConfig JSON file\n"
      "  --KEY=VALUE        set any schema field by dotted path, e.g.\n"
      "                     --protocol=Calvin --ycsb.cross_ratio=0.5\n"
      "                     --duration_s=2 --cluster.num_nodes=8\n"
      "                     (applied after --config, in command order)\n"
      "  --series           also print the throughput time series\n"
      "  --json             emit the full result as one JSON object\n"
      "  --print-config     print the effective config JSON and exit\n\n"
      "sweep (grid file; see examples/configs/):\n"
      "  --sweep=FILE       expand a JSON axis grid and run every point\n"
      "  --filter=SUBSTR    run only points whose name contains SUBSTR\n"
      "  --threads=N        sweep pool size (default hardware_concurrency)\n"
      "  --repeat=N         run each point N times with derived seeds and\n"
      "                     report per-metric medians (+ min/max); with\n"
      "                     --json each point aggregates into median/min/max\n"
      "                     blocks instead of one record per run\n"
      "  --json             emit the merged sweep JSON instead of summaries\n\n"
      "discovery:\n"
      "  --list             registered protocols and workloads\n"
      "  --flags            every derived --KEY flag, grouped by config\n"
      "                     section (--flags=md for a markdown dump)\n"
      "  --help             this text\n");
}

void PrintFlags() {
  // Grouped by top-level config section, both derived from the schema —
  // the listing and the section help never go stale by hand.
  std::vector<ConfigFlagGroup> groups =
      ListFlagGroups(ExperimentConfigSchema());
  size_t width = 0;
  for (const ConfigFlagGroup& g : groups) {
    for (const auto& f : g.flags) width = std::max(width, f.first.size());
  }
  bool first = true;
  for (const ConfigFlagGroup& g : groups) {
    if (!first) std::printf("\n");
    first = false;
    if (g.name.empty()) {
      std::printf("top-level:\n");
    } else {
      std::printf("%s — %s:\n", g.name.c_str(), g.help.c_str());
    }
    for (const auto& f : g.flags) {
      std::printf("  --%-*s  %s\n", static_cast<int>(width), f.first.c_str(),
                  f.second.c_str());
    }
  }
}

int RunSweep(const std::string& sweep_path, const std::string& filter,
             int threads, int repeat, bool json) {
  std::vector<SweepPoint> points;
  Status s = LoadSweepFile(sweep_path, &points);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (!filter.empty()) {
    std::vector<SweepPoint> kept;
    for (SweepPoint& p : points) {
      if (p.name.find(filter) != std::string::npos)
        kept.push_back(std::move(p));
    }
    points = std::move(kept);
    if (points.empty()) {
      std::fprintf(stderr, "no sweep points match --filter=%s\n",
                   filter.c_str());
      return 1;
    }
  }
  points = ExpandRepeat(std::move(points), repeat);

  SweepOptions options;
  options.threads = threads;
  options.on_progress = MakeSweepProgress(StderrIsTty() && !json,
                                          points.size());
  SweepRunner runner(options);
  for (SweepPoint& p : points) runner.Add(std::move(p));
  std::vector<SweepOutcome> outcomes = runner.Run();

  if (json) {
    std::printf("%s\n", MergeRepeatJson(outcomes, repeat).c_str());
    bool all_ok = true;
    for (const SweepOutcome& o : outcomes) all_ok &= o.status.ok();
    return all_ok ? 0 : 1;
  }
  return PrintSweepSummaries(stdout, outcomes, repeat) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string sweep_path;
  std::string filter;
  // Dotted-path overrides in command order; applied after --config so flags
  // refine a file-loaded base.
  std::vector<std::pair<std::string, std::string>> overrides;
  int threads = 0;
  int repeat = 1;
  bool series = false;
  bool json = false;
  bool print_config = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--list") == 0) {
      PrintRegistries();
      return 0;
    } else if (std::strcmp(a, "--flags") == 0) {
      PrintFlags();
      return 0;
    } else if (std::strcmp(a, "--flags=md") == 0) {
      std::printf("%s", FlagsMarkdown(ExperimentConfigSchema(),
                                      "lion_bench_cli flag reference")
                            .c_str());
      return 0;
    } else if (std::strcmp(a, "--help") == 0) {
      PrintUsage();
      return 0;
    } else if (std::strcmp(a, "--series") == 0) {
      series = true;
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else if (std::strcmp(a, "--print-config") == 0) {
      print_config = true;
    } else if (std::strncmp(a, "--config=", 9) == 0) {
      config_path = a + 9;
    } else if (std::strncmp(a, "--sweep=", 8) == 0) {
      sweep_path = a + 8;
    } else if (std::strncmp(a, "--filter=", 9) == 0) {
      filter = a + 9;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      threads = std::atoi(a + 10);
    } else if (std::strncmp(a, "--repeat=", 9) == 0) {
      repeat = std::atoi(a + 9);
      if (repeat < 1) {
        std::fprintf(stderr, "--repeat must be >= 1\n");
        return 1;
      }
    } else if (std::strncmp(a, "--", 2) == 0 &&
               std::strchr(a + 2, '=') != nullptr) {
      const char* eq = std::strchr(a + 2, '=');
      overrides.emplace_back(std::string(a + 2, eq), std::string(eq + 1));
    } else {
      std::fprintf(stderr, "unknown flag: %s (see --help, --flags)\n", a);
      return 1;
    }
  }

  if (!sweep_path.empty()) {
    if (!overrides.empty() || !config_path.empty() || series ||
        print_config) {
      std::fprintf(stderr,
                   "--sweep runs the grid file as-is; --config, --series and "
                   "--KEY overrides apply to single runs only\n");
      return 1;
    }
    return RunSweep(sweep_path, filter, threads, repeat, json);
  }
  if (repeat != 1 || threads != 0 || !filter.empty()) {
    std::fprintf(stderr,
                 "--repeat/--threads/--filter apply to --sweep runs only\n");
    return 1;
  }

  ExperimentConfig cfg;
  if (!config_path.empty()) {
    Json doc;
    Status s = Json::ParseFile(config_path, &doc);
    if (s.ok()) s = ParseExperimentConfig(doc, &cfg);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  for (const auto& kv : overrides) {
    Status s = SetExperimentFlag(&cfg, kv.first, kv.second);
    if (!s.ok()) {
      std::fprintf(stderr, "--%s=%s: %s\n", kv.first.c_str(),
                   kv.second.c_str(), s.ToString().c_str());
      return 1;
    }
  }

  if (print_config) {
    std::printf("%s\n", EmitExperimentConfig(cfg).Dump().c_str());
    return 0;
  }

  ExperimentResult res;
  Status status = ExperimentBuilder(cfg).Run(&res);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    PrintRegistries();
    return 1;
  }
  if (res.committed == 0) {
    std::fprintf(stderr,
                 "no transactions committed — run too short for this "
                 "protocol/workload (try a longer --duration_s)\n");
    return 1;
  }

  if (json) {
    std::printf("%s\n", res.ToJson().c_str());
    return 0;
  }

  std::printf("protocol   : %s\n", cfg.protocol.c_str());
  std::printf("workload   : %s\n", cfg.workload.c_str());
  std::printf("throughput : %.0f txn/s\n", res.throughput);
  std::printf("committed  : %llu (aborts %llu)\n",
              (unsigned long long)res.committed, (unsigned long long)res.aborts);
  std::printf("classes    : single=%llu remastered=%llu distributed=%llu\n",
              (unsigned long long)res.single_node,
              (unsigned long long)res.remastered,
              (unsigned long long)res.distributed);
  std::printf("latency us : p10=%.0f p50=%.0f p95=%.0f p99=%.0f\n", res.p10_us,
              res.p50_us, res.p95_us, res.p99_us);
  std::printf("network    : %.0f bytes/txn\n", res.bytes_per_txn);
  std::printf("adaptation : %llu remasters, %llu migrations (%.1f MB)\n",
              (unsigned long long)res.remasters,
              (unsigned long long)res.migrations,
              res.migrated_bytes / (1024.0 * 1024.0));
  if (series) {
    std::printf("series ktxn/s:");
    for (double v : res.window_throughput) std::printf(" %.0f", v / 1000.0);
    std::printf("\n");
  }
  return 0;
}
