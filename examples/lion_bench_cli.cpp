// Command-line experiment runner: compose any protocol x workload x cluster
// configuration without writing code. Protocols and workloads are
// enumerated live from the registries, so anything linked in is runnable.
//
// Usage examples:
//   lion_bench_cli --protocol=Lion --workload=ycsb --cross=0.8 --skew=0.8
//   lion_bench_cli --protocol=Calvin --workload=tpcc --nodes=8 --duration=5
//   lion_bench_cli --protocol=Lion --workload=ycsb-hotspot-position --series
//   lion_bench_cli --list
//   lion_bench_cli --json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.h"

using namespace lion;

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

void PrintRegistries() {
  std::printf("protocols:");
  for (const std::string& p : ProtocolRegistry::Global().Names()) {
    std::printf(" %s%s", p.c_str(),
                ProtocolRegistry::Global().IsBatch(p) ? "*" : "");
  }
  std::printf("   (* = batch execution)\nworkloads:");
  for (const std::string& w : WorkloadRegistry::Global().Names()) {
    std::printf(" %s", w.c_str());
  }
  std::printf("\n");
}

void PrintUsage() {
  std::printf(
      "lion_bench_cli — run one simulated experiment\n\n"
      "  --protocol=NAME    (default Lion)\n"
      "  --workload=NAME    (default ycsb)\n"
      "  --nodes=N          executor nodes (default 4)\n"
      "  --cross=F          YCSB cross-partition ratio 0..1 / TPC-C remote ratio\n"
      "  --skew=F           skew factor 0..1 (default 0)\n"
      "  --duration=SECS    measured seconds (default 2)\n"
      "  --warmup=SECS      warmup seconds (default 1)\n"
      "  --remaster-us=N    remastering delay (default 3000)\n"
      "  --seed=N           RNG seed (default 1)\n"
      "  --series           also print the throughput time series\n"
      "  --json             emit the full result as one JSON object\n"
      "  --list             list registered protocols and workloads\n");
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.protocol = "Lion";
  cfg.workload = "ycsb";
  cfg.warmup = 1 * kSecond;
  cfg.duration = 2 * kSecond;
  cfg.cluster.remaster_base_delay = 3000 * kMicrosecond;
  bool series = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (std::strcmp(argv[i], "--list") == 0) {
      PrintRegistries();
      return 0;
    } else if (std::strcmp(argv[i], "--series") == 0) {
      series = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage();
      return 0;
    } else if (ParseFlag(argv[i], "protocol", &v)) {
      cfg.protocol = v;
    } else if (ParseFlag(argv[i], "workload", &v)) {
      cfg.workload = v;
    } else if (ParseFlag(argv[i], "nodes", &v)) {
      cfg.cluster.num_nodes = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "cross", &v)) {
      cfg.ycsb.cross_ratio = std::atof(v.c_str());
      cfg.tpcc.remote_ratio = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "skew", &v)) {
      cfg.ycsb.skew_factor = std::atof(v.c_str());
      cfg.tpcc.skew_factor = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "duration", &v)) {
      cfg.duration = static_cast<SimTime>(std::atof(v.c_str()) * kSecond);
    } else if (ParseFlag(argv[i], "warmup", &v)) {
      cfg.warmup = static_cast<SimTime>(std::atof(v.c_str()) * kSecond);
    } else if (ParseFlag(argv[i], "remaster-us", &v)) {
      cfg.cluster.remaster_base_delay = std::atoi(v.c_str()) * kMicrosecond;
    } else if (ParseFlag(argv[i], "seed", &v)) {
      cfg.seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n\n", argv[i]);
      PrintUsage();
      return 1;
    }
  }

  if (cfg.workload == "tpcc") cfg.cluster.partitions_per_node = 4;

  ExperimentResult res;
  Status status = ExperimentBuilder(cfg).Run(&res);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    PrintRegistries();
    return 1;
  }
  if (res.committed == 0) {
    std::fprintf(stderr,
                 "no transactions committed — run too short for this "
                 "protocol/workload (try a longer --duration)\n");
    return 1;
  }

  if (json) {
    std::printf("%s\n", res.ToJson().c_str());
    return 0;
  }

  std::printf("protocol   : %s\n", cfg.protocol.c_str());
  std::printf("workload   : %s\n", cfg.workload.c_str());
  std::printf("throughput : %.0f txn/s\n", res.throughput);
  std::printf("committed  : %llu (aborts %llu)\n",
              (unsigned long long)res.committed, (unsigned long long)res.aborts);
  std::printf("classes    : single=%llu remastered=%llu distributed=%llu\n",
              (unsigned long long)res.single_node,
              (unsigned long long)res.remastered,
              (unsigned long long)res.distributed);
  std::printf("latency us : p10=%.0f p50=%.0f p95=%.0f p99=%.0f\n", res.p10_us,
              res.p50_us, res.p95_us, res.p99_us);
  std::printf("network    : %.0f bytes/txn\n", res.bytes_per_txn);
  std::printf("adaptation : %llu remasters, %llu migrations (%.1f MB)\n",
              (unsigned long long)res.remasters,
              (unsigned long long)res.migrations,
              res.migrated_bytes / (1024.0 * 1024.0));
  if (series) {
    std::printf("series ktxn/s:");
    for (double v : res.window_throughput) std::printf(" %.0f", v / 1000.0);
    std::printf("\n");
  }
  return 0;
}
