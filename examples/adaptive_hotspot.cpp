// Adaptive hotspot demo: a workload whose hot partitions shift every two
// simulated seconds. Compares 2PC (static) against Lion (adaptive replica
// provision) and prints throughput over time so the adaptation is visible.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.h"

using namespace lion;

namespace {

ExperimentResult Run(const std::string& protocol) {
  ExperimentBuilder builder;
  builder.Protocol(protocol)
      .Workload("ycsb-hotspot-interval")
      .DynamicPeriod(2 * kSecond)
      .Warmup(0)
      .Duration(12 * kSecond);  // two full cycles of three phases
  builder.config().cluster.num_nodes = 4;
  builder.config().lion.planner.interval = 250 * kMillisecond;
  builder.config().predictor.train_epochs = 8;
  ExperimentResult res;
  Status status = builder.Run(&res);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    std::exit(1);
  }
  return res;
}

void PrintSeries(const char* name, const ExperimentResult& res) {
  std::printf("%-6s ktxn/s:", name);
  // One sample per 500 ms for readability.
  for (size_t i = 4; i < res.window_throughput.size(); i += 5) {
    std::printf(" %5.0f", res.window_throughput[i] / 1000.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Hotspot shifts every 2 s (phase boundaries at 2, 4, 6, ... s)\n");
  ExperimentResult twopc = Run("2PC");
  ExperimentResult lion = Run("Lion");
  PrintSeries("2PC", twopc);
  PrintSeries("Lion", lion);
  std::printf("\nAverages: 2PC %.0f txn/s | Lion %.0f txn/s (%.1fx)\n",
              twopc.throughput, lion.throughput,
              lion.throughput / twopc.throughput);
  std::printf("Lion executed %.1f%% of transactions on a single node.\n",
              100.0 * (lion.single_node + lion.remastered) /
                  std::max<uint64_t>(1, lion.committed));
  return 0;
}
